//! Fault-model contract of the stream engine (DESIGN.md §11):
//!
//! 1. an over-offered load **sheds and backpressures** — it never
//!    deadlocks, and every admitted frame still gets exactly one
//!    outcome,
//! 2. shed and faulted frames leave **no scratch-ledger bytes
//!    outstanding** in any slot arena (the PR 4 leak sweep, applied to
//!    the slot ring),
//! 3. an injected **worker death mid-stream** does not lose frames: the
//!    pool self-heals and every frame completes bit-exact against the
//!    serial fused kernel.
//!
//! This is one test function (not several) because faultline state is
//! process-global and the libtest harness runs sibling tests on other
//! threads.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pixelimage::{synthetic_image, Image};
use simdbench_core::dispatch::Engine;
use simdbench_core::kernelgen::paper_gaussian_kernel;
use simdbench_core::pipeline::try_fused_gaussian_blur_with;
use simdbench_core::scratch::Scratch;
use simdbench_core::stream::{
    frame_checksum, summarize, FrameStatus, StreamConfig, StreamEngine, StreamError,
};

fn config(w: usize, h: usize) -> StreamConfig {
    let mut cfg = StreamConfig::new(w, h);
    cfg.engine = Engine::Native;
    cfg.slots = 1;
    cfg.queue_cap = 2;
    cfg
}

fn submit_closed_loop(engine: &StreamEngine, id: u64, src: &Arc<Image<u8>>) {
    loop {
        match engine.submit(id, Arc::clone(src)) {
            Ok(()) => return,
            Err(StreamError::Saturated { .. }) => engine.wait_idle(),
            Err(e) => panic!("unexpected rejection for frame {id}: {e}"),
        }
    }
}

#[test]
fn overload_sheds_cleanly_and_worker_death_loses_nothing() {
    faultline::disarm_all();
    rayon::reset_circuit_breaker();
    let (w, h) = (160, 120);
    let src = Arc::new(synthetic_image(w, h, 311));

    // Serial reference checksum for every bit-exactness assertion.
    let want = {
        let mut reference = Image::new(w, h);
        let mut scratch = Scratch::new();
        try_fused_gaussian_blur_with(
            &src,
            &mut reference,
            &paper_gaussian_kernel(),
            Engine::Native,
            &mut scratch,
        )
        .expect("serial reference");
        frame_checksum(&reference)
    };

    // --- 1. Over-offered load: sheds + rejects, never deadlocks. ------
    // Each frame is pinned to >= 20ms of injected service time against a
    // 5ms SLO and a 2-deep queue: frames age out in the queue while the
    // single slot is busy, so the open-loop burst below MUST shed, and
    // the whole batch must still settle (the test completing at all is
    // the no-deadlock claim).
    let mut cfg = config(w, h);
    cfg.slo = Some(Duration::from_millis(5));
    let engine = StreamEngine::new(cfg).expect("engine");
    faultline::arm("stream.frame", faultline::Action::Delay(20), 1.0, 9001);
    let offered = 30u64;
    let mut rejected = 0usize;
    for id in 0..offered {
        match engine.submit(id, Arc::clone(&src)) {
            Ok(()) => {}
            Err(StreamError::Saturated { .. }) => rejected += 1,
            Err(e) => panic!("unexpected rejection: {e}"),
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    engine.wait_idle();
    faultline::disarm_all();
    assert_eq!(
        engine.outstanding_scratch_bytes(),
        0,
        "shed/served frames must return every workspace"
    );
    let outcomes = engine.finish();
    let summary = summarize(&outcomes);
    assert_eq!(
        outcomes.len() + rejected,
        offered as usize,
        "every admitted frame needs exactly one outcome"
    );
    assert!(
        summary.shed > 0,
        "a 20ms-per-frame load against a 5ms SLO must shed (shed={}, rejected={rejected})",
        summary.shed
    );
    assert_eq!(summary.failed, 0, "delays are not failures");
    for o in &outcomes {
        match &o.status {
            FrameStatus::Completed { checksum } => assert_eq!(*checksum, want),
            FrameStatus::Shed(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("deadline exceeded"),
                    "shed frames carry the DeadlineExceeded verdict, got {msg}"
                );
            }
            FrameStatus::Failed(e) => panic!("unexpected failure: {e}"),
        }
    }

    // --- 2. Injected faults at the slot lifecycle leak nothing. -------
    // Forced errors at admission and on the worker surface as Rejected /
    // Failed outcomes, and the ledgers stay clean.
    let engine = StreamEngine::new(config(w, h)).expect("engine");
    faultline::arm("stream.admit", faultline::Action::Error, 1.0, 9002);
    match engine.submit(0, Arc::clone(&src)) {
        Err(StreamError::Rejected(e)) => {
            assert!(e.to_string().contains("stream.admit"), "got {e}")
        }
        other => panic!("armed stream.admit must reject, got {other:?}"),
    }
    faultline::disarm_all();
    faultline::arm("stream.frame", faultline::Action::Error, 1.0, 9003);
    submit_closed_loop(&engine, 1, &src);
    engine.wait_idle();
    faultline::disarm_all();
    assert_eq!(engine.outstanding_scratch_bytes(), 0);
    let outcomes = engine.finish();
    assert_eq!(outcomes.len(), 1);
    match &outcomes[0].status {
        FrameStatus::Failed(e) => assert!(e.to_string().contains("stream.frame"), "got {e}"),
        other => panic!("armed stream.frame must fail the frame, got {other:?}"),
    }

    // --- 3. Worker death mid-stream: self-heal, no lost frames. -------
    // `pool.worker` panics unwind the worker *after* each detached frame
    // task finishes, so frames keep completing while the pool loses and
    // respawns workers underneath the stream.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // injected panics by design
    let complement = rayon::pool_live_workers();
    let engine = StreamEngine::new(config(w, h)).expect("engine");
    faultline::arm("pool.worker", faultline::Action::Panic, 0.5, 9004);
    for id in 0..20u64 {
        submit_closed_loop(&engine, id, &src);
    }
    engine.wait_idle();
    faultline::disarm_all();
    std::panic::set_hook(prev_hook);
    let outcomes = engine.finish();
    assert_eq!(outcomes.len(), 20);
    for o in &outcomes {
        match &o.status {
            FrameStatus::Completed { checksum } => {
                assert_eq!(*checksum, want, "frame {} not bit-exact", o.id)
            }
            other => panic!("frame {} lost to worker death: {other:?}", o.id),
        }
    }
    // The complement restores once the deaths stop (respawns are async).
    let deadline = Instant::now() + Duration::from_secs(10);
    while rayon::pool_live_workers() < complement && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        rayon::pool_live_workers() >= complement,
        "pool complement not restored after injected worker deaths"
    );
}
