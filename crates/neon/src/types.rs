//! NEON vector types: `<type><size>x<lanes>_t` aliases over the portable
//! lane types, plus the array-of-vector struct types
//! (`<type><size>x<lanes>x<len>_t`) used by the structured load/stores.

use simd_vector::{
    F32x2, F32x4, I16x4, I16x8, I32x2, I32x4, I64x1, I64x2, I8x16, I8x8, U16x4, U16x8, U32x2,
    U32x4, U64x1, U64x2, U8x16, U8x8,
};

// Q (128-bit) register views.
/// Four packed `f32` lanes in a Q register.
pub type float32x4_t = F32x4;
/// Sixteen packed `i8` lanes in a Q register.
pub type int8x16_t = I8x16;
/// Sixteen packed `u8` lanes in a Q register.
pub type uint8x16_t = U8x16;
/// Eight packed `i16` lanes in a Q register.
pub type int16x8_t = I16x8;
/// Eight packed `u16` lanes in a Q register.
pub type uint16x8_t = U16x8;
/// Four packed `i32` lanes in a Q register.
pub type int32x4_t = I32x4;
/// Four packed `u32` lanes in a Q register.
pub type uint32x4_t = U32x4;
/// Two packed `i64` lanes in a Q register.
pub type int64x2_t = I64x2;
/// Two packed `u64` lanes in a Q register.
pub type uint64x2_t = U64x2;
/// Polynomial lanes are carried as raw unsigned bits.
pub type poly8x16_t = U8x16;
/// Eight packed 16-bit polynomial lanes (raw bits).
pub type poly16x8_t = U16x8;

// D (64-bit) register views.
/// Two packed `f32` lanes in a D register.
pub type float32x2_t = F32x2;
/// Eight packed `i8` lanes in a D register.
pub type int8x8_t = I8x8;
/// Eight packed `u8` lanes in a D register.
pub type uint8x8_t = U8x8;
/// Four packed `i16` lanes in a D register.
pub type int16x4_t = I16x4;
/// Four packed `u16` lanes in a D register.
pub type uint16x4_t = U16x4;
/// Two packed `i32` lanes in a D register.
pub type int32x2_t = I32x2;
/// Two packed `u32` lanes in a D register.
pub type uint32x2_t = U32x2;
/// One `i64` lane in a D register.
pub type int64x1_t = I64x1;
/// One `u64` lane in a D register.
pub type uint64x1_t = U64x1;
/// Eight packed 8-bit polynomial lanes (raw bits).
pub type poly8x8_t = U8x8;
/// Four packed 16-bit polynomial lanes (raw bits).
pub type poly16x4_t = U16x4;

macro_rules! array_of_vectors {
    ($(#[$meta:meta])* $name:ident, $vec:ty, $len:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq)]
        #[repr(C)]
        pub struct $name {
            /// The vector array, exactly as in `arm_neon.h`.
            pub val: [$vec; $len],
        }
    };
}

array_of_vectors!(
    /// Two `uint8x8_t` vectors (result of `vld2_u8`).
    uint8x8x2_t, uint8x8_t, 2
);
array_of_vectors!(
    /// Two `uint8x16_t` vectors (result of `vld2q_u8`).
    uint8x16x2_t, uint8x16_t, 2
);
array_of_vectors!(
    /// Three `uint8x16_t` vectors (result of `vld3q_u8`, e.g. packed RGB).
    uint8x16x3_t, uint8x16_t, 3
);
array_of_vectors!(
    /// Two `int16x4_t` vectors — the paper's Section II-C example type.
    int16x4x2_t, int16x4_t, 2
);
array_of_vectors!(
    /// Two `int16x8_t` vectors.
    int16x8x2_t, int16x8_t, 2
);
array_of_vectors!(
    /// Two `float32x4_t` vectors (result of `vld2q_f32`).
    float32x4x2_t, float32x4_t, 2
);
array_of_vectors!(
    /// Two `uint32x4_t` vectors (result of `vtrnq_u32` etc.).
    uint32x4x2_t, uint32x4_t, 2
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_types_are_128_bit() {
        assert_eq!(std::mem::size_of::<float32x4_t>(), 16);
        assert_eq!(std::mem::size_of::<int16x8_t>(), 16);
        assert_eq!(std::mem::size_of::<uint8x16_t>(), 16);
    }

    #[test]
    fn d_types_are_64_bit() {
        assert_eq!(std::mem::size_of::<int16x4_t>(), 8);
        assert_eq!(std::mem::size_of::<uint8x8_t>(), 8);
        assert_eq!(std::mem::size_of::<float32x2_t>(), 8);
    }

    #[test]
    fn array_types_match_paper_description() {
        // int16x4x2_t is "a struct type with parameter int16x4_t val[2]".
        let v = int16x4x2_t {
            val: [int16x4_t::splat(1), int16x4_t::splat(2)],
        };
        assert_eq!(v.val[0].to_array(), [1; 4]);
        assert_eq!(v.val[1].to_array(), [2; 4]);
        assert_eq!(std::mem::size_of::<int16x4x2_t>(), 16);
        assert_eq!(std::mem::size_of::<uint8x16x3_t>(), 48);
    }
}
