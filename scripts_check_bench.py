#!/usr/bin/env python3
"""CI perf-regression gate: compares a fresh `repro host` dump against
the committed BENCH trajectory baseline and fails on regressions.

Usage: scripts_check_bench.py [bench_host.json] [BENCH_host.json]

Each (kernel, engine, image) point's median per-pass time is compared
against the same point in the baseline's most recent run. A point is a
regression when its median exceeds the baseline by more than the noise
threshold (default 10%, override with the CI_PERF_THRESHOLD env var,
in percent). The gate prints a per-kernel delta table, flags every
regression, and exits nonzero if any exist. Points present on only one
side (a new kernel, a retired one) are reported but never fail the
gate. Stdlib-only, like its siblings scripts_merge_bench.py and
scripts_extract_bench.py.

Run from CI via `CI_PERF=1 scripts/ci.sh` (or `scripts/ci.sh --stage
perf`), which benches first and then invokes this check; refresh the
baseline after intentional perf changes with scripts_merge_bench.py.
"""
import json
import os
import sys

DEFAULT_THRESHOLD_PCT = 10.0


def load_points(path, trajectory):
    """Returns {(kernel, engine, image): median_ns} for a bench dump or
    for the most recent run of a trajectory file."""
    with open(path) as f:
        data = json.load(f)
    if trajectory:
        runs = data.get("runs")
        if not runs:
            raise SystemExit(f"{path}: trajectory has no runs to compare against")
        measurements = runs[-1]["measurements"]
    else:
        if "measurements" not in data:
            raise SystemExit(f"{path}: not a bench_host.json dump (no 'measurements')")
        measurements = data["measurements"]
    points = {}
    for m in measurements:
        key = (m["kernel"], m["engine"], m["image"])
        points[key] = m["median_s"] * 1e9
    return points


def check(current_path, baseline_path, threshold_pct):
    current = load_points(current_path, trajectory=False)
    baseline = load_points(baseline_path, trajectory=True)

    print(
        f"perf gate: {current_path} vs {baseline_path} "
        f"(threshold {threshold_pct:g}% on median per-pass ns)"
    )
    header = (
        f"{'kernel':<10} {'engine':<8} {'image':<11} "
        f"{'base ns':>14} {'now ns':>14} {'delta':>8}  verdict"
    )
    print(header)
    print("-" * len(header))

    regressions = []
    for key in sorted(baseline):
        kernel, engine, image = key
        base_ns = baseline[key]
        if key not in current:
            print(
                f"{kernel:<10} {engine:<8} {image:<11} {base_ns:>14.0f} "
                f"{'--':>14} {'--':>8}  MISSING (not in current run)"
            )
            continue
        now_ns = current[key]
        delta_pct = (now_ns - base_ns) / base_ns * 100.0
        if delta_pct > threshold_pct:
            verdict = "REGRESSION"
            regressions.append((key, delta_pct))
        elif delta_pct < -threshold_pct:
            verdict = "improved"
        else:
            verdict = "ok"
        print(
            f"{kernel:<10} {engine:<8} {image:<11} {base_ns:>14.0f} "
            f"{now_ns:>14.0f} {delta_pct:>+7.1f}%  {verdict}"
        )
    for key in sorted(set(current) - set(baseline)):
        kernel, engine, image = key
        print(
            f"{kernel:<10} {engine:<8} {image:<11} {'--':>14} "
            f"{current[key]:>14.0f} {'--':>8}  new (no baseline)"
        )

    if regressions:
        print(f"\n{len(regressions)} REGRESSION(S) past the {threshold_pct:g}% threshold:")
        for (kernel, engine, image), delta_pct in regressions:
            print(f"  - {kernel}/{engine}/{image}: {delta_pct:+.1f}%")
        print(
            "If intentional, refresh the baseline: "
            "scripts_merge_bench.py results/bench_host.json BENCH_host.json"
        )
        return 1
    print("\nperf gate clean: no point regressed past the threshold")
    return 0


if __name__ == "__main__":
    src = sys.argv[1] if len(sys.argv) > 1 else "results/bench_host.json"
    base = sys.argv[2] if len(sys.argv) > 2 else "BENCH_host.json"
    try:
        threshold = float(os.environ.get("CI_PERF_THRESHOLD", DEFAULT_THRESHOLD_PCT))
    except ValueError:
        raise SystemExit("CI_PERF_THRESHOLD must be a number (percent)")
    sys.exit(check(src, base, threshold))
