//! End-to-end tests of the two command-line binaries, spawned as real
//! processes.

use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn imgtool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_imgtool"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simd-repro-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn repro_table1_prints_all_platforms() {
    let out = repro().arg("table1").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for name in ["Intel Atom D510", "NVIDIA Tegra T30", "Samsung Exynos 3110"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn repro_table2_has_speedup_rows() {
    let out = repro().arg("table2").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(text.matches("Speed-up").count(), 4); // one per image size
    assert!(text.contains("3264x2448"));
}

#[test]
fn repro_figures_render_bars() {
    for figure in ["figure2", "figure3", "figure4", "figure5", "figure6"] {
        let out = repro().arg(figure).output().unwrap();
        assert!(out.status.success(), "{figure}");
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains('#'), "{figure} has no bars");
        assert!(text.contains("ODROID-X"));
    }
}

#[test]
fn repro_asm_analysis_reports_instruction_ratio() {
    let out = repro().arg("asm-analysis").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("instruction ratio"));
    assert!(text.contains("libcall"));
}

#[test]
fn repro_csv_writes_all_files() {
    let dir = temp_dir("csv");
    let out = repro().arg("csv").arg(&dir).output().unwrap();
    assert!(out.status.success());
    for file in [
        "table1.csv",
        "table2.csv",
        "table3.csv",
        "figure2.csv",
        "figure6.csv",
    ] {
        let path = dir.join(file);
        assert!(path.exists(), "missing {file}");
        assert!(std::fs::metadata(&path).unwrap().len() > 50);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_fused_quick_reports_speedups() {
    let dir = temp_dir("fused");
    let csv = dir.join("fused.csv");
    let out = repro()
        .args(["fused", "--quick", "--csv", csv.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("fused"));
    assert!(text.contains("speed-up"));
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    // Header + the three stencil kernels at VGA.
    assert_eq!(csv_text.lines().count(), 4);
    assert!(csv_text.starts_with("kernel,image,two_pass_seconds,fused_seconds,speedup"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_parallel_quick_reports_dispatch_gain() {
    let dir = temp_dir("parallel");
    let csv = dir.join("parallel.csv");
    let out = repro()
        .args(["parallel", "--quick", "--csv", csv.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("persistent pool vs per-call thread spawning"));
    assert!(text.contains("pool gain"));
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    // Header + the three stencil kernels at VGA.
    assert_eq!(csv_text.lines().count(), 4);
    assert!(csv_text.starts_with("kernel,image,seq_seconds,spawn_seconds,pool_seconds,pool_gain"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_host_telemetry_prints_report_and_writes_json() {
    let dir = temp_dir("host-telemetry");
    let telemetry = dir.join("telemetry.json");
    let bench = dir.join("bench_host.json");
    let out = repro()
        .args(["host", "--quick", "--telemetry"])
        .args(["--json", telemetry.to_str().unwrap()])
        .args(["--bench-json", bench.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    // Distribution stats from the retained per-pass samples.
    assert!(text.contains("per-pass distribution"));
    assert!(text.contains("median"));
    assert!(text.contains("stddev"));
    // Telemetry report sections.
    assert!(text.contains("span tree"));
    assert!(text.contains("harness.passes"));
    assert!(text.contains("harness.pass_ns"));

    let json = std::fs::read_to_string(&telemetry).unwrap();
    assert!(json.trim_start().starts_with('{'));
    assert!(json.contains("\"counters\""));
    assert!(json.contains("\"histograms\""));
    assert!(json.contains("\"spans\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    let bench_json = std::fs::read_to_string(&bench).unwrap();
    assert!(bench_json.contains("\"measurements\""));
    assert!(bench_json.contains("\"median_s\""));
    // 5 kernels x 2 engines at VGA.
    assert_eq!(bench_json.matches("\"kernel\"").count(), 10);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_stats_reports_all_three_layers() {
    let dir = temp_dir("stats");
    let telemetry = dir.join("telemetry.json");
    let out = repro()
        .args(["stats", "--json", telemetry.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    // Pipeline, pool, and harness layers all show up in one report.
    assert!(text.contains("pipeline.bands"));
    assert!(text.contains("pool.steals"));
    assert!(text.contains("harness.passes"));
    assert!(text.contains("steals by victim"));
    assert!(text.contains("fused.gaussian"));
    let json = std::fs::read_to_string(&telemetry).unwrap();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_chaos_quick_reports_clean_matrix() {
    let out = repro()
        .args(["chaos", "--quick", "--seed", "7"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "chaos matrix reported violations:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    // Every fault family ran ...
    for failpoint in [
        "fused.entry",
        "par_fused.entry",
        "pipeline.band",
        "pool.task",
        "pool.worker",
    ] {
        assert!(text.contains(failpoint), "missing {failpoint} cell");
    }
    // ... the recovery machinery demonstrably engaged ...
    assert!(text.contains("pool.respawns"));
    assert!(text.contains("complement restored"));
    assert!(text.contains("open -> degraded serial (bit-exact) -> closed"));
    // ... and every invariant held.
    assert!(text.contains("chaos matrix clean"));
    assert!(!text.contains("INVARIANT VIOLATIONS"));
}

#[test]
fn repro_stream_quick_smoke_is_clean_and_writes_report() {
    let dir = temp_dir("stream");
    let json = dir.join("stream.json");
    let telemetry = dir.join("telemetry_stream.json");
    let out = repro()
        .args(["stream", "--quick", "--telemetry"])
        .args(["--json", json.to_str().unwrap()])
        .args(["--telemetry-json", telemetry.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stream smoke reported violations:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Stream mode"));
    assert!(text.contains("throughput"));
    assert!(text.contains("stream smoke clean"));
    let report = std::fs::read_to_string(&json).unwrap();
    for key in [
        "\"throughput_fps\"",
        "\"latency_s\"",
        "\"steady_state\"",
        "\"shed\": 0",
        "\"checksum_mismatches\": 0",
        "\"outstanding_bytes\": 0",
    ] {
        assert!(report.contains(key), "stream.json missing {key}: {report}");
    }
    let telem = std::fs::read_to_string(&telemetry).unwrap();
    for metric in ["stream.admitted", "stream.completed", "stream.frame_ns"] {
        assert!(telem.contains(metric), "telemetry missing {metric}");
    }
}

#[test]
fn repro_rejects_unknown_command() {
    let out = repro().arg("bogus").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"));
}

#[test]
fn imgtool_demo_then_pipeline_roundtrip() {
    let dir = temp_dir("imgtool");
    // Generate synthetic photos.
    let out = imgtool().arg("demo").arg(&dir).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let photo = dir.join("photo0.bmp");
    assert!(photo.exists());

    // Blur with an explicit sigma.
    let blurred = dir.join("blurred.bmp");
    let out = imgtool()
        .args(["blur", photo.to_str().unwrap(), blurred.to_str().unwrap()])
        .args(["--sigma", "1.5", "--ksize", "9"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Edge-detect the blurred image with the simulated NEON backend.
    let edges = dir.join("edges.bmp");
    let out = imgtool()
        .args(["edges", blurred.to_str().unwrap(), edges.to_str().unwrap()])
        .args(["--thresh", "80", "--engine", "neon-sim"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The edge map decodes as a binary BMP of the same size.
    let bytes = std::fs::read(&edges).unwrap();
    match pixelimage::bmp::decode(&bytes).unwrap() {
        pixelimage::bmp::Decoded::Gray(img) => {
            assert_eq!(img.width(), 640);
            assert_eq!(img.height(), 480);
            assert!(img.iter_pixels().all(|p| p == 0 || p == 255));
        }
        _ => panic!("expected gray BMP"),
    }

    // Halving produces 320x240.
    let half = dir.join("half.bmp");
    let out = imgtool()
        .args(["half", photo.to_str().unwrap(), half.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let bytes = std::fs::read(&half).unwrap();
    match pixelimage::bmp::decode(&bytes).unwrap() {
        pixelimage::bmp::Decoded::Gray(img) => {
            assert_eq!((img.width(), img.height()), (320, 240));
        }
        _ => panic!("expected gray BMP"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn imgtool_rejects_bad_engine_and_missing_file() {
    let out = imgtool()
        .args(["blur", "in.bmp", "out.bmp", "--engine", "quantum"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown engine"));

    let out = imgtool()
        .args(["blur", "/nonexistent/in.bmp", "/tmp/out.bmp"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
