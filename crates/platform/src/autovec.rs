//! The per-kernel auto-vectorization profile of the paper's compiler
//! (gcc 4.6 with `-O3` and the vectorization flags of Section III-C).
//!
//! The paper's Section II-B cites Maleki et al. (PACT 2011): state-of-the-art
//! compilers vectorized only 18–30 % of real application code, failing on
//! non-unit-stride access, alignment, and data-dependency transformations.
//! Its own Section V disassembly confirms the failures for these kernels.
//! This module names each failure mode explicitly; [`crate::workload`]'s
//! AUTO instruction mixes are the quantitative form of the same facts.

use crate::spec::Isa;
use crate::workload::Kernel;
use serde::{Deserialize, Serialize};

/// What gcc 4.6 actually produced for a kernel's hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AutovecOutcome {
    /// Fully scalar loop with a per-element library call — the ARM
    /// float→short loop (`bl lrint` in the Section V listing).
    ScalarWithLibcall,
    /// Scalar loop whose rounding step inlines a scalar-domain SIMD
    /// sequence (`_mm_set_sd` + `_mm_cvtsd_si32`) — the Intel float→short
    /// loop.
    ScalarInlineSimdRound,
    /// Scalar loop kept serial by a data-dependent branch the compiler did
    /// not if-convert — the threshold loop.
    ScalarBranchy,
    /// Scalar multiply-accumulate tap loop; the filter's shifted windows
    /// defeat the vectorizer's alignment/dependence analysis — the
    /// Gaussian/Sobel/edge loops.
    ScalarTapLoop,
}

impl AutovecOutcome {
    /// One-line explanation for reports.
    pub fn description(self) -> &'static str {
        match self {
            AutovecOutcome::ScalarWithLibcall => {
                "scalar loop, per-pixel lrint library call (Section V ARM listing)"
            }
            AutovecOutcome::ScalarInlineSimdRound => {
                "scalar loop, cvRound inlined as _mm_set_sd/_mm_cvtsd_si32"
            }
            AutovecOutcome::ScalarBranchy => "scalar loop, data-dependent branch not if-converted",
            AutovecOutcome::ScalarTapLoop => {
                "scalar multiply-accumulate taps, windows not blocked by vector width"
            }
        }
    }

    /// True when the outcome leaves a library call in the loop body.
    pub fn has_libcall(self) -> bool {
        matches!(self, AutovecOutcome::ScalarWithLibcall)
    }
}

/// The outcome gcc 4.6 produced for `(kernel, isa)`.
pub fn outcome(kernel: Kernel, isa: Isa) -> AutovecOutcome {
    match (kernel, isa) {
        (Kernel::Convert, Isa::Neon) => AutovecOutcome::ScalarWithLibcall,
        (Kernel::Convert, Isa::Sse2) => AutovecOutcome::ScalarInlineSimdRound,
        (Kernel::Threshold, _) => AutovecOutcome::ScalarBranchy,
        (Kernel::Gaussian | Kernel::Sobel | Kernel::Edge, _) => AutovecOutcome::ScalarTapLoop,
    }
}

/// The full profile for one ISA, in kernel order.
pub fn profile(isa: Isa) -> Vec<(Kernel, AutovecOutcome)> {
    Kernel::ALL.iter().map(|&k| (k, outcome(k, isa))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::auto_mix;
    use op_trace::OpClass;

    #[test]
    fn profile_covers_all_kernels() {
        for isa in [Isa::Sse2, Isa::Neon] {
            let p = profile(isa);
            assert_eq!(p.len(), Kernel::ALL.len());
        }
    }

    #[test]
    fn outcomes_are_consistent_with_the_modelled_mixes() {
        // The qualitative profile and the quantitative mixes must agree:
        // a libcall outcome iff the mix contains libcalls.
        for isa in [Isa::Sse2, Isa::Neon] {
            for kernel in Kernel::ALL {
                let has_call = auto_mix(kernel, isa).get(OpClass::LibCall) > 0.0;
                assert_eq!(
                    outcome(kernel, isa).has_libcall(),
                    has_call,
                    "{kernel:?}/{isa:?}"
                );
            }
        }
    }

    #[test]
    fn convert_differs_by_isa_only() {
        // The paper's gcc treats both groups alike except where the source
        // itself is ISA-conditional (the cvRound #ifdef).
        for kernel in [
            Kernel::Threshold,
            Kernel::Gaussian,
            Kernel::Sobel,
            Kernel::Edge,
        ] {
            assert_eq!(outcome(kernel, Isa::Sse2), outcome(kernel, Isa::Neon));
        }
        assert_ne!(
            outcome(Kernel::Convert, Isa::Sse2),
            outcome(Kernel::Convert, Isa::Neon)
        );
    }

    #[test]
    fn descriptions_are_distinct() {
        let all = [
            AutovecOutcome::ScalarWithLibcall,
            AutovecOutcome::ScalarInlineSimdRound,
            AutovecOutcome::ScalarBranchy,
            AutovecOutcome::ScalarTapLoop,
        ];
        let set: std::collections::HashSet<_> = all.iter().map(|o| o.description()).collect();
        assert_eq!(set.len(), all.len());
    }
}
